(** Imperative circuit builder.

    Produces gates in topological order by construction; wire handles
    are only obtainable from gate-creating calls, so use-before-define
    is impossible through this interface. *)

type t

val create : unit -> t

val input : t -> client:int -> Circuit.wire
val add : t -> Circuit.wire -> Circuit.wire -> Circuit.wire
val mul : t -> Circuit.wire -> Circuit.wire -> Circuit.wire

val constant_wire : t -> ?client:int -> int -> Circuit.wire
(** [constant_wire b ~client v] is the wire carrying the public
    constant [v].  Circuits have no constant gates, so constants enter
    as ordinary inputs of a designated constants client (default
    [0]); the wire is created at first use and memoized, so each
    distinct [(client, v)] pair costs exactly one input gate no matter
    how often it is requested.  At evaluation time the constants
    client must supply the values listed by {!constants}, in order,
    at the positions where they appear in its input sequence. *)

val constants : t -> (int * int) list
(** The [(client, value)] pairs created by {!constant_wire} so far, in
    first-use order — i.e. in the gate order of the corresponding
    input gates. *)

val sub : t -> ?const_client:int -> Circuit.wire -> Circuit.wire -> Circuit.wire
(** [sub b a b'] computes [a - b'] as [a + (-1) * b'], materializing
    the [-1] constant via {!constant_wire} on [const_client] (default
    [0]). *)

val sub_via_mul : t -> minus_one_wire:Circuit.wire -> Circuit.wire -> Circuit.wire -> Circuit.wire
[@@ocaml.deprecated "use Builder.sub, which materializes the -1 constant itself"]
(** [a - b] given a wire carrying the constant [-1]: [a + (-1)*b].
    Deprecated: {!sub} wraps the constants-client idiom and needs no
    manual [-1] plumbing.  Kept as an alias for one release. *)

val output : t -> client:int -> Circuit.wire -> unit

val sum : t -> Circuit.wire list -> Circuit.wire
(** Balanced addition tree. @raise Invalid_argument on []. *)

val product : t -> Circuit.wire list -> Circuit.wire
(** Balanced multiplication tree (depth [ceil log2 n]).
    @raise Invalid_argument on []. *)

val dot : t -> Circuit.wire list -> Circuit.wire list -> Circuit.wire
(** Inner product: pairwise [mul] then {!sum}. *)

val build : t -> Circuit.t
(** Finalize.  The builder must not be reused afterwards. *)
