exception Closed

type 'a t = {
  mutex : Mutex.t;
  refill_ok : Condition.t;   (* producer waits here in [reserve] *)
  available : Condition.t;   (* consumer waits here in [draw] *)
  slots : (int * string, (int * 'a) Queue.t) Hashtbl.t;
  cap : int;
  low_mark : int;
  mutable occupancy : int;
  mutable gate_open : bool;
  mutable closed : bool;
  mutable poison : exn option;
  mutable puts : int;
  mutable draws : int;
  mutable producer_blocks : int;
  mutable consumer_blocks : int;
  mutable max_occupancy : int;
  mutable draw_log_rev : (int * string) list;
}

let create ?low ~capacity () =
  if capacity < 1 then invalid_arg "Depot.create: capacity must be >= 1";
  let low_mark = match low with Some l -> l | None -> capacity / 2 in
  if low_mark < 0 || low_mark >= capacity then
    invalid_arg "Depot.create: need 0 <= low < capacity";
  {
    mutex = Mutex.create ();
    refill_ok = Condition.create ();
    available = Condition.create ();
    slots = Hashtbl.create 16;
    cap = capacity;
    low_mark;
    occupancy = 0;
    gate_open = true;
    closed = false;
    poison = None;
    puts = 0;
    draws = 0;
    producer_blocks = 0;
    consumer_blocks = 0;
    max_occupancy = 0;
    draw_log_rev = [];
  }

let capacity t = t.cap
let low t = t.low_mark

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let reserve t =
  locked t (fun () ->
      if t.closed then raise Closed;
      if t.occupancy >= t.cap then t.gate_open <- false;
      if not t.gate_open then begin
        t.producer_blocks <- t.producer_blocks + 1;
        while (not t.gate_open) && not t.closed do
          Condition.wait t.refill_ok t.mutex
        done;
        if t.closed then raise Closed
      end)

let put t ~circuit ~kind ~units slot =
  if units < 0 then invalid_arg "Depot.put: negative units";
  locked t (fun () ->
      if t.closed then raise Closed;
      let q =
        match Hashtbl.find_opt t.slots (circuit, kind) with
        | Some q -> q
        | None ->
          let q = Queue.create () in
          Hashtbl.replace t.slots (circuit, kind) q;
          q
      in
      Queue.push (units, slot) q;
      t.occupancy <- t.occupancy + units;
      if t.occupancy > t.max_occupancy then t.max_occupancy <- t.occupancy;
      t.puts <- t.puts + 1;
      Condition.broadcast t.available)

let draw t ~circuit ~kind =
  locked t (fun () ->
      let ready () =
        match Hashtbl.find_opt t.slots (circuit, kind) with
        | Some q when not (Queue.is_empty q) -> Some q
        | _ -> None
      in
      let fail_closed () =
        match t.poison with Some e -> raise e | None -> raise Closed
      in
      let q =
        match ready () with
        | Some q -> q
        | None ->
          if t.closed then fail_closed ();
          t.consumer_blocks <- t.consumer_blocks + 1;
          let rec wait () =
            Condition.wait t.available t.mutex;
            match ready () with
            | Some q -> q
            | None -> if t.closed then fail_closed () else wait ()
          in
          wait ()
      in
      let units, slot = Queue.pop q in
      t.occupancy <- t.occupancy - units;
      t.draws <- t.draws + 1;
      t.draw_log_rev <- (circuit, kind) :: t.draw_log_rev;
      if (not t.gate_open) && t.occupancy <= t.low_mark then begin
        t.gate_open <- true;
        Condition.broadcast t.refill_ok
      end;
      slot)

let close t =
  locked t (fun () ->
      t.closed <- true;
      Condition.broadcast t.available;
      Condition.broadcast t.refill_ok)

let fail t exn =
  locked t (fun () ->
      if t.poison = None then t.poison <- Some exn;
      t.closed <- true;
      Condition.broadcast t.available;
      Condition.broadcast t.refill_ok)

let occupancy t = locked t (fun () -> t.occupancy)

type stats = {
  puts : int;
  draws : int;
  producer_blocks : int;
  consumer_blocks : int;
  max_occupancy : int;
  final_occupancy : int;
  draw_log : (int * string) list;
}

let stats t =
  locked t (fun () ->
      {
        puts = t.puts;
        draws = t.draws;
        producer_blocks = t.producer_blocks;
        consumer_blocks = t.consumer_blocks;
        max_occupancy = t.max_occupancy;
        final_occupancy = t.occupancy;
        draw_log = List.rev t.draw_log_rev;
      })
