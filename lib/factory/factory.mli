(** Streaming offline factory: one long-lived producer/consumer
    pipeline running a sequence of circuits.

    A background producer domain opens one {!Yoso_mpc.Protocol}
    session per circuit (seed derived as [Splitmix.mix seed j]), runs
    the offline committees batch by batch
    ({!Yoso_mpc.Offline.prepare_batch}) and pushes the typed items
    into a bounded {!Depot}.  The consumer (the calling domain) draws
    each circuit's session and preprocessing from the depot and runs
    the online phase through a depot-backed
    {!Yoso_mpc.Offline.source}, so circuit [j]'s online phase overlaps
    circuit [j+1]'s preprocessing.

    Every session is self-contained (own board, pool, rng streams),
    so each circuit's transcript digest and outputs are byte-identical
    to an independent one-shot {!Yoso_mpc.Protocol.execute} at the
    same derived seed and offline opts — streaming changes wall-clock
    schedule, never bytes. *)

module F = Yoso_field.Field.Fp
module Circuit = Yoso_circuit.Circuit

type job = {
  circuit : Circuit.t;
  inputs : int -> F.t array;
}

(** One depot slot: the circuit's opened session, or one preprocessing
    batch of it. *)
type slot =
  | Session of Yoso_mpc.Protocol.session
  | Item of Yoso_mpc.Offline.item

type circuit_result = {
  index : int;                         (** position in the job array *)
  seed : int;                          (** derived per-circuit seed *)
  report : Yoso_mpc.Protocol.report;
}

type report = {
  results : circuit_result list;       (** in job order *)
  cost : Yoso_runtime.Cost.t;
      (** element counts summed over the stream, with every circuit's
          ["offline"] phase remapped to ["factory"] — refill traffic
          is its own dimension next to setup/online *)
  meter : Yoso_net.Meter.t;
      (** byte meters summed over the stream, plus one refill row per
          produced batch (["c<j>/<kind>"]) attributing the offline
          bytes that batch put on the wire *)
  depot : Depot.stats;
  refills_during_online : int;
      (** batches the producer deposited while some circuit's online
          phase was executing — the pipeline-overlap witness *)
  circuits : int;
  total_mult : int;                    (** mult gates summed over the stream *)
  wall_ms : float;                     (** whole-stream wall clock *)
  gates_per_sec : float;               (** [total_mult / wall_ms], sustained *)
}

val derived_seed : int -> int -> int
(** [derived_seed base j] is circuit [j]'s session seed — exposed so
    one-shot comparison runs can reproduce it. *)

val stream :
  params:Yoso_mpc.Params.t ->
  ?config:Yoso_mpc.Protocol.config ->
  ?capacity:int ->
  ?low:int ->
  jobs:job array ->
  unit ->
  report
(** Runs every job through one factory.  [config] (default
    {!Yoso_mpc.Protocol.default_config}) is the per-circuit template;
    only its seed is rewritten per circuit.  [capacity]/[low] bound
    the depot in gate-equivalent units (defaults: twice the largest
    circuit's units, half of that).  Producer exceptions (including
    {!Yoso_runtime.Faults.Protocol_failure} from an audit) propagate
    to the caller after the producer domain is joined. *)

val report_json : report -> string
(** Stream-level summary as one JSON object: throughput, depot stats,
    refill attribution, and the per-circuit digest/output list. *)
