module F = Yoso_field.Field.Fp
module Circuit = Yoso_circuit.Circuit
module Layout = Yoso_circuit.Layout
module Splitmix = Yoso_hash.Splitmix
module Cost = Yoso_runtime.Cost
module Meter = Yoso_net.Meter
module Board = Yoso_net.Board
module Protocol = Yoso_mpc.Protocol
module Offline = Yoso_mpc.Offline
module Params = Yoso_mpc.Params

type job = {
  circuit : Circuit.t;
  inputs : int -> F.t array;
}

type slot =
  | Session of Protocol.session
  | Item of Offline.item

type circuit_result = {
  index : int;
  seed : int;
  report : Protocol.report;
}

type report = {
  results : circuit_result list;
  cost : Cost.t;
  meter : Meter.t;
  depot : Depot.stats;
  refills_during_online : int;
  circuits : int;
  total_mult : int;
  wall_ms : float;
  gates_per_sec : float;
}

let derived_seed base j = Splitmix.mix base j

(* depot weight of one whole circuit, in the units [Offline.item_units]
   charges: wire lambdas (one per gate), input-prep wires, k gate slots
   per packed layer batch, the holder, and the session slot itself *)
let units_of_job params job =
  let layout = Layout.make job.circuit ~k:params.Params.k in
  let layer_units =
    Array.fold_left
      (fun acc batches -> acc + (layout.Layout.k * List.length batches))
      0 layout.Layout.mult_layers
  in
  Circuit.size job.circuit + Circuit.num_inputs job.circuit + layer_units + 2

(* minor arena for sustained dual-domain operation, in words.  Every
   minor collection is a stop-the-world sync across domains; at the
   stock 256k-word arena the producer and consumer rendezvous so often
   that synchronization swamps the pipeline (measured ~2x on one
   core).  32 MB per domain cuts the sync frequency ~16x; [stream]
   restores the caller's setting on exit. *)
let stream_minor_words = 4 * 1024 * 1024

let stream ~params ?(config = Protocol.default_config) ?capacity ?low ~jobs () =
  if Array.length jobs = 0 then invalid_arg "Factory.stream: no jobs";
  let gc0 = Gc.get () in
  Gc.set
    { gc0 with Gc.minor_heap_size = max gc0.Gc.minor_heap_size stream_minor_words };
  Fun.protect ~finally:(fun () -> Gc.set gc0) @@ fun () ->
  let base_seed = config.Protocol.exec.Protocol.seed in
  let capacity =
    match capacity with
    | Some c -> c
    | None ->
      2 * Array.fold_left (fun acc j -> max acc (units_of_job params j)) 1 jobs
  in
  let depot : slot Depot.t = Depot.create ?low ~capacity () in
  let refill_meter = Meter.create () in
  let online_active = Atomic.make false in
  let refills_during_online = Atomic.make 0 in

  let produce_circuit j job =
    Depot.reserve depot;
    let config =
      {
        config with
        Protocol.exec = { config.Protocol.exec with Protocol.seed = derived_seed base_seed j };
      }
    in
    let s = Protocol.open_session ~params ~config ~circuit:job.circuit () in
    Depot.put depot ~circuit:j ~kind:"session" ~units:1 (Session s);
    let layout = Protocol.session_layout s in
    let meter = Board.meter (Protocol.session_board s) in
    let st = Protocol.start_stream s in
    let before = ref (Meter.phase_total meter ~phase:"offline") in
    let rec refill () =
      let t0 = Unix.gettimeofday () in
      match Offline.prepare_batch st with
      | None -> ()
      | Some item ->
        (* record timing and refill bytes before the put: the depot
           mutex then orders these writes before any consumer read *)
        Protocol.record_offline_ms s ((Unix.gettimeofday () -. t0) *. 1000.);
        let after = Meter.phase_total meter ~phase:"offline" in
        Meter.record_refill refill_meter
          ~batch:(Printf.sprintf "c%d/%s" j (Offline.item_kind item))
          ~bytes:(after - !before);
        before := after;
        Depot.put depot ~circuit:j ~kind:(Offline.item_kind item)
          ~units:(Offline.item_units layout item) (Item item);
        if Atomic.get online_active then Atomic.incr refills_during_online;
        refill ()
    in
    refill ()
  in
  let producer () =
    try
      Array.iteri produce_circuit jobs;
      Depot.close depot
    with e -> Depot.fail depot e
  in

  let agg_cost = Cost.create () in
  let agg_meter = Meter.create () in
  let to_factory phase = if String.equal phase "offline" then "factory" else phase in
  let consume_circuit j job =
    let s =
      match Depot.draw depot ~circuit:j ~kind:"session" with
      | Session s -> s
      | Item _ -> assert false
    in
    let layout = Protocol.session_layout s in
    let draw_item kind =
      match Depot.draw depot ~circuit:j ~kind with
      | Item item -> item
      | Session _ -> assert false
    in
    let source =
      {
        Offline.src_layout = layout;
        src_layers = Array.length layout.Layout.mult_layers;
        src_wire_lambda =
          (fun () ->
            match draw_item "lambdas" with Offline.Lambdas a -> a | _ -> assert false);
        src_input_preps =
          (fun () ->
            match draw_item "inputs" with Offline.Inputs l -> l | _ -> assert false);
        src_mult_preps =
          (fun li ->
            match draw_item (Printf.sprintf "layer%d" li) with
            | Offline.Layer (_, preps) -> preps
            | _ -> assert false);
        src_final_holder =
          (fun () ->
            match draw_item "holder" with Offline.Holder h -> h | _ -> assert false);
      }
    in
    Atomic.set online_active true;
    let report =
      Fun.protect
        ~finally:(fun () -> Atomic.set online_active false)
        (fun () -> Protocol.consume s source ~inputs:job.inputs)
    in
    let board = Protocol.session_board s in
    Cost.merge_into ~map_phase:to_factory ~dst:agg_cost (Board.cost board);
    Meter.merge_into ~dst:agg_meter (Board.meter board);
    Protocol.close_session s;
    { index = j; seed = derived_seed base_seed j; report }
  in

  let t_start = Unix.gettimeofday () in
  let prod = Domain.spawn producer in
  let results =
    match Array.to_list (Array.mapi consume_circuit jobs) with
    | results ->
      Domain.join prod;
      results
    | exception e ->
      (* unblock a producer waiting in [reserve], then join so the
         domain never outlives the stream call *)
      Depot.fail depot e;
      (try Domain.join prod with _ -> ());
      raise e
  in
  let wall_ms = (Unix.gettimeofday () -. t_start) *. 1000. in
  Meter.merge_into ~dst:agg_meter refill_meter;
  let total_mult =
    List.fold_left (fun acc r -> acc + r.report.Protocol.num_mult) 0 results
  in
  {
    results;
    cost = agg_cost;
    meter = agg_meter;
    depot = Depot.stats depot;
    refills_during_online = Atomic.get refills_during_online;
    circuits = Array.length jobs;
    total_mult;
    wall_ms;
    gates_per_sec = float_of_int total_mult /. (wall_ms /. 1000.);
  }

let report_json r =
  let b = Buffer.create 1024 in
  Buffer.add_char b '{';
  Printf.bprintf b "\"circuits\":%d,\"total_mult\":%d," r.circuits r.total_mult;
  Printf.bprintf b "\"wall_ms\":%.3f,\"gates_per_sec\":%.2f," r.wall_ms r.gates_per_sec;
  Printf.bprintf b "\"factory_elements\":%d,\"online_elements\":%d,"
    (Cost.elements r.cost ~phase:"factory")
    (Cost.elements r.cost ~phase:"online");
  Printf.bprintf b "\"refill_bytes\":%d,\"refill_batches\":%d,"
    (Meter.refill_total r.meter)
    (List.length (Meter.refills r.meter));
  Printf.bprintf b "\"refills_during_online\":%d," r.refills_during_online;
  let d = r.depot in
  Printf.bprintf b
    "\"depot\":{\"puts\":%d,\"draws\":%d,\"producer_blocks\":%d,\"consumer_blocks\":%d,\"max_occupancy\":%d},"
    d.Depot.puts d.Depot.draws d.Depot.producer_blocks d.Depot.consumer_blocks
    d.Depot.max_occupancy;
  Buffer.add_string b "\"runs\":[";
  List.iteri
    (fun i cr ->
      if i > 0 then Buffer.add_char b ',';
      let t = cr.report.Protocol.transcript in
      Printf.bprintf b
        "{\"index\":%d,\"seed\":%d,\"num_mult\":%d,\"digest\":%d,\"frames\":%d}" cr.index
        cr.seed cr.report.Protocol.num_mult t.Board.digest t.Board.frames)
    r.results;
  Buffer.add_string b "]}";
  Buffer.contents b
