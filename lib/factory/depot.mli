(** Bounded buffer of preprocessing material between the factory's
    producer domain and the consuming online phase.

    The depot stores typed slots keyed by [(circuit, kind)], weighted
    by gate-equivalent units, under one mutex.  Flow control is a
    watermark with hysteresis, enforced at {e circuit granularity}:

    - {!reserve} — called by the producer before starting a circuit —
      blocks while the gate is shut: the gate shuts when occupancy has
      reached [capacity] and reopens once draws bring it down to
      [low].
    - {!put} never blocks.  A circuit whose production has started is
      always pushed to completion, so occupancy can overshoot
      [capacity] by at most one circuit's worth of units.  This is
      what makes the scheme deadlock-free: the consumer drains
      circuits fully and in order, so the item the consumer blocks on
      is always produced without the producer needing depot space.
    - {!draw} blocks until the requested [(circuit, kind)] slot is
      available, or raises once the depot is closed (or re-raises the
      producer's failure if it was {!fail}ed).

    Draw order is decided solely by the (single-threaded) consumer, so
    {!stats}[.draw_log] is deterministic for a given job sequence no
    matter how production and consumption interleave. *)

type 'a t

exception Closed
(** Raised by {!draw} when the depot is closed and the slot will never
    arrive, and by {!put}/{!reserve} after {!close}. *)

val create : ?low:int -> capacity:int -> unit -> 'a t
(** [capacity] is the high watermark in units (>= 1); [low] (default
    [capacity / 2]) is the refill-resume threshold, [0 <= low <
    capacity]. *)

val capacity : 'a t -> int
val low : 'a t -> int

val reserve : 'a t -> unit
(** Producer-side gate, called once per circuit before producing it;
    blocks while the depot is above the watermark (counted in
    {!stats}[.producer_blocks]). *)

val put : 'a t -> circuit:int -> kind:string -> units:int -> 'a -> unit
(** Deposits a slot; never blocks. *)

val draw : 'a t -> circuit:int -> kind:string -> 'a
(** Removes and returns the next slot of [(circuit, kind)] in put
    order, blocking until one arrives (counted in
    {!stats}[.consumer_blocks]). *)

val close : 'a t -> unit
(** No further puts; blocked draws for missing slots raise {!Closed}. *)

val fail : 'a t -> exn -> unit
(** Producer died: close and make every subsequent draw re-raise
    [exn] — the consumer surfaces the producer's exception instead of
    hanging. *)

val occupancy : 'a t -> int

type stats = {
  puts : int;
  draws : int;
  producer_blocks : int;  (** reserve calls that had to wait *)
  consumer_blocks : int;  (** draw calls that had to wait *)
  max_occupancy : int;    (** peak units held *)
  final_occupancy : int;
  draw_log : (int * string) list;
      (** every draw as [(circuit, kind)], in draw order — the
          determinism witness *)
}

val stats : 'a t -> stats
(** Snapshot under the depot lock; take it after the stream ends for
    stable values. *)
