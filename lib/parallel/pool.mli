(** A fixed-size [Domain] worker pool with deterministic data-parallel
    primitives.

    Written from scratch on the OCaml 5 stdlib ([Domain] / [Mutex] /
    [Condition]) — no external scheduler.  The design goal is not
    work-stealing cleverness but {e replayability}: a protocol run
    must produce the byte-identical transcript whether it executes on
    1 domain or 8.  Three rules deliver that:

    - {b static chunking by index} — [map t n f] partitions [0..n-1]
      into contiguous chunks whose boundaries depend only on [n], the
      pool size and the (pure) cost hint; which domain runs a chunk is
      scheduling-dependent, but {e what} each index computes is not;
    - {b pre-sized result arrays} — every [f i] writes its result into
      slot [i] of an array allocated up front, so output order never
      depends on completion order;
    - {b derived RNGs} — code running under the pool must never draw
      from a shared mutable stream; see {!derive_rng}.

    Scheduling is cost-aware: the optional [?cost] hint on the
    primitives declares relative per-index weight, and chunk
    boundaries are cut at near-equal {e weight} (up to [4 * domains]
    chunks) instead of near-equal count, so skewed workloads — e.g. a
    committee where honest members encrypt and fail-stop members do
    nothing — balance instead of serializing behind one domain.
    Chunks are claimed in small batches to cut lock traffic.

    The pool is {e not} re-entrant: calling [map] from inside a
    closure already running under the same pool deadlocks the caller's
    chunk.  Protocol code parallelizes one layer at a time (the
    per-member fan-out), which never nests. *)

type t

val create : domains:int -> t
(** [create ~domains] spawns [domains - 1] worker domains (the calling
    domain participates in every [map], so [domains] is the total
    parallelism).  [domains <= 1] spawns nothing and every primitive
    runs inline — the sequential semantics are the specification the
    parallel path is tested against.
    @raise Invalid_argument if [domains < 1] or [domains > 128]. *)

val domains : t -> int

val sequential : t
(** A shared 1-domain pool: primitives run inline, no worker state.
    Useful as a default where no parallelism was requested. *)

val map : ?cost:(int -> int) -> t -> int -> (int -> 'a) -> 'a array
(** [map t n f] is [[| f 0; f 1; ...; f (n-1) |]], with the [f i]
    evaluated concurrently across the pool's domains.  Each [f i] is
    called exactly once.  If any [f i] raises, the first exception (in
    claim order) is re-raised in the caller after all chunks settle.
    [f] must not touch shared mutable state (that includes shared RNG
    streams) and must not call back into the same pool.

    [?cost] declares the relative weight of index [i] (values are
    clamped to [>= 1]); it must be pure.  The hint changes only how
    indices group into chunks — results, and any transcript produced
    under the pool, are identical with or without it.  [n = 0] returns
    [[||]] without waking a single worker; [n = 1] (or a 1-domain
    pool) runs inline. *)

val map_reduce :
  ?cost:(int -> int) ->
  t -> int -> map:(int -> 'a) -> reduce:('b -> 'a -> 'b) -> init:'b -> 'b
(** [map_reduce t n ~map ~reduce ~init] computes
    [reduce (... (reduce init (map 0)) ...) (map (n-1))]: the [map]s
    run under the pool, the fold is sequential in index order — so the
    result equals the purely sequential evaluation even when [reduce]
    is not associative. *)

val iter : ?cost:(int -> int) -> t -> int -> (int -> unit) -> unit
(** [iter t n f] runs [f 0 .. f (n-1)] under the pool, for effects
    into caller-allocated per-index slots. Same rules as {!map}. *)

val chunk_bounds : ?cost:(int -> int) -> t -> int -> (int * int) array
(** The inclusive [(lo, hi)] index ranges {!map}/{!iter} would use for
    a job of size [n]: [min domains n] near-equal ranges without a
    hint, up to [4 * domains] near-equal-weight ranges with one.
    Deterministic in [(n, domains, cost)]; exposed for tests and for
    callers that want to pre-stage per-chunk state. *)

val shutdown : t -> unit
(** Joins the worker domains.  Idempotent; the pool must not be used
    afterwards.  Shutting down {!sequential} is a no-op. *)

val derive_rng : seed:int -> int -> Random.State.t
(** [derive_rng ~seed i] is a fresh RNG for index [i], derived by a
    stateless avalanche mix of [(seed, i)].  Two calls with equal
    arguments yield identical streams; distinct indices yield
    independent streams.  This is the only sanctioned way for code
    under {!map} to obtain randomness: draw one [seed] from the parent
    stream {e before} entering the pool, then derive per-index. *)

(** {1 Per-chunk profiling} *)

val set_profiling : bool -> unit
(** Toggle the per-chunk timing hook (off by default; one flag for the
    whole process).  While enabled, every chunk drained by any pool
    records [(domain, chunk, ms)] — the worker's index within its pool
    ([0] is the calling domain), the chunk's position in the job, and
    its wall-clock duration. *)

val drain_profile : unit -> (int * int * float) list
(** Return the samples recorded since the last drain, oldest first,
    and clear the buffer.  [bench par --profile] turns this into the
    per-domain chunk-time breakdown. *)
