(** A fixed-size [Domain] worker pool with deterministic data-parallel
    primitives.

    Written from scratch on the OCaml 5 stdlib ([Domain] / [Mutex] /
    [Condition]) — no external scheduler.  The design goal is not
    work-stealing cleverness but {e replayability}: a protocol run
    must produce the byte-identical transcript whether it executes on
    1 domain or 8.  Three rules deliver that:

    - {b static chunking by index} — [map t n f] partitions [0..n-1]
      into contiguous chunks; which domain runs a chunk is
      scheduling-dependent, but {e what} each index computes is not;
    - {b pre-sized result arrays} — every [f i] writes its result into
      slot [i] of an array allocated up front, so output order never
      depends on completion order;
    - {b derived RNGs} — code running under the pool must never draw
      from a shared mutable stream; see {!derive_rng}.

    The pool is {e not} re-entrant: calling [map] from inside a
    closure already running under the same pool deadlocks the caller's
    chunk.  Protocol code parallelizes one layer at a time (the
    per-member fan-out), which never nests. *)

type t

val create : domains:int -> t
(** [create ~domains] spawns [domains - 1] worker domains (the calling
    domain participates in every [map], so [domains] is the total
    parallelism).  [domains <= 1] spawns nothing and every primitive
    runs inline — the sequential semantics are the specification the
    parallel path is tested against.
    @raise Invalid_argument if [domains < 1] or [domains > 128]. *)

val domains : t -> int

val sequential : t
(** A shared 1-domain pool: primitives run inline, no worker state.
    Useful as a default where no parallelism was requested. *)

val map : t -> int -> (int -> 'a) -> 'a array
(** [map t n f] is [[| f 0; f 1; ...; f (n-1) |]], with the [f i]
    evaluated concurrently across the pool's domains.  Each [f i] is
    called exactly once.  If any [f i] raises, the first exception (in
    claim order) is re-raised in the caller after all chunks settle.
    [f] must not touch shared mutable state (that includes shared RNG
    streams) and must not call back into the same pool. *)

val map_reduce : t -> int -> map:(int -> 'a) -> reduce:('b -> 'a -> 'b) -> init:'b -> 'b
(** [map_reduce t n ~map ~reduce ~init] computes
    [reduce (... (reduce init (map 0)) ...) (map (n-1))]: the [map]s
    run under the pool, the fold is sequential in index order — so the
    result equals the purely sequential evaluation even when [reduce]
    is not associative. *)

val iter : t -> int -> (int -> unit) -> unit
(** [iter t n f] runs [f 0 .. f (n-1)] under the pool, for effects
    into caller-allocated per-index slots. Same rules as {!map}. *)

val shutdown : t -> unit
(** Joins the worker domains.  Idempotent; the pool must not be used
    afterwards.  Shutting down {!sequential} is a no-op. *)

val derive_rng : seed:int -> int -> Random.State.t
(** [derive_rng ~seed i] is a fresh RNG for index [i], derived by a
    stateless avalanche mix of [(seed, i)].  Two calls with equal
    arguments yield identical streams; distinct indices yield
    independent streams.  This is the only sanctioned way for code
    under {!map} to obtain randomness: draw one [seed] from the parent
    stream {e before} entering the pool, then derive per-index. *)
