module Splitmix = Yoso_hash.Splitmix

(* One batch of work: [chunks] are closures over disjoint index
   ranges, claimed greedily under the pool lock.  Results land in
   arrays pre-sized by the caller, so nothing here depends on which
   domain runs which chunk. *)
type job = {
  chunks : (unit -> unit) array;
  mutable next : int;  (* next unclaimed chunk *)
  mutable completed : int;  (* chunks finished (or failed) *)
  mutable failed : exn option;  (* first exception, in claim order *)
}

type t = {
  domains : int;
  lock : Mutex.t;
  has_work : Condition.t;
  work_done : Condition.t;
  mutable job : job option;
  mutable stopping : bool;
  mutable workers : unit Domain.t array;
}

(* Claim and run chunks of [j] until none remain.  Called (and
   returns) with [t.lock] held; the lock is released around each chunk
   body. *)
let drain t j =
  let len = Array.length j.chunks in
  while j.next < len do
    let c = j.next in
    j.next <- j.next + 1;
    Mutex.unlock t.lock;
    let error =
      match j.chunks.(c) () with () -> None | exception e -> Some e
    in
    Mutex.lock t.lock;
    (match error with
    | Some e when j.failed = None -> j.failed <- Some e
    | _ -> ());
    j.completed <- j.completed + 1;
    if j.completed = len then Condition.broadcast t.work_done
  done

let worker t =
  Mutex.lock t.lock;
  let rec loop () =
    if t.stopping then Mutex.unlock t.lock
    else
      match t.job with
      | Some j when j.next < Array.length j.chunks ->
        drain t j;
        loop ()
      | _ ->
        Condition.wait t.has_work t.lock;
        loop ()
  in
  loop ()

let create ~domains =
  if domains < 1 || domains > 128 then
    invalid_arg "Pool.create: domains must be in [1, 128]";
  let t =
    {
      domains;
      lock = Mutex.create ();
      has_work = Condition.create ();
      work_done = Condition.create ();
      job = None;
      stopping = false;
      workers = [||];
    }
  in
  if domains > 1 then
    t.workers <- Array.init (domains - 1) (fun _ -> Domain.spawn (fun () -> worker t));
  t

let domains t = t.domains
let sequential = create ~domains:1

let shutdown t =
  if Array.length t.workers > 0 then begin
    Mutex.lock t.lock;
    t.stopping <- true;
    Condition.broadcast t.has_work;
    Mutex.unlock t.lock;
    Array.iter Domain.join t.workers;
    t.workers <- [||]
  end

(* Submit [chunks], participate in draining them, wait for stragglers,
   then re-raise the first failure if any. *)
let run_job t chunks =
  let len = Array.length chunks in
  if len > 0 then begin
    let j = { chunks; next = 0; completed = 0; failed = None } in
    Mutex.lock t.lock;
    t.job <- Some j;
    Condition.broadcast t.has_work;
    drain t j;
    while j.completed < len do
      Condition.wait t.work_done t.lock
    done;
    t.job <- None;
    Mutex.unlock t.lock;
    match j.failed with Some e -> raise e | None -> ()
  end

(* Static chunking: [min domains n] contiguous ranges of near-equal
   size.  The partition depends only on [n] and the pool size — never
   on scheduling. *)
let chunk_bounds t n =
  let nchunks = min t.domains n in
  Array.init nchunks (fun c -> (c * n / nchunks, ((c + 1) * n / nchunks) - 1))

let iter t n f =
  if n < 0 then invalid_arg "Pool.iter: negative size";
  if n > 0 then
    if t.domains = 1 || n = 1 then
      for i = 0 to n - 1 do
        f i
      done
    else
      run_job t
        (Array.map
           (fun (lo, hi) ->
             fun () ->
              for i = lo to hi do
                f i
              done)
           (chunk_bounds t n))

let map t n f =
  if n < 0 then invalid_arg "Pool.map: negative size";
  if n = 0 then [||]
  else if t.domains = 1 || n = 1 then begin
    let r0 = f 0 in
    let out = Array.make n r0 in
    for i = 1 to n - 1 do
      out.(i) <- f i
    done;
    out
  end
  else begin
    let out = Array.make n None in
    iter t n (fun i -> out.(i) <- Some (f i));
    Array.map (function Some v -> v | None -> assert false) out
  end

let map_reduce t n ~map:f ~reduce ~init =
  if t.domains = 1 || n <= 1 then begin
    let acc = ref init in
    for i = 0 to n - 1 do
      acc := reduce !acc (f i)
    done;
    !acc
  end
  else Array.fold_left reduce init (map t n f)

let derive_rng ~seed i = Random.State.make [| Splitmix.mix seed i |]
