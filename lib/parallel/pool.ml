module Splitmix = Yoso_hash.Splitmix

(* One batch of work: [chunks] are closures over disjoint index
   ranges, claimed in batches under the pool lock.  Results land in
   arrays pre-sized by the caller, so nothing here depends on which
   domain runs which chunk. *)
type job = {
  chunks : (unit -> unit) array;
  mutable next : int;  (* next unclaimed chunk *)
  mutable completed : int;  (* chunks finished (or failed) *)
  mutable failed : exn option;  (* first exception, in claim order *)
}

type t = {
  domains : int;
  lock : Mutex.t;
  has_work : Condition.t;
  work_done : Condition.t;
  mutable job : job option;
  mutable stopping : bool;
  mutable workers : unit Domain.t array;
}

(* ------------------------------------------------------------------ *)
(* Per-chunk timing hook, off by default                                *)
(* ------------------------------------------------------------------ *)

(* When enabled, every drained chunk appends a sample to a global,
   mutex-guarded list.  A global sink (rather than per-pool state) is
   deliberate: the pools that matter are created inside
   [Protocol.execute] and shut down before the caller can ask them
   anything, so the bench's [--profile] flag needs a collection point
   that outlives the pool.  Cost when disabled is one bool load per
   claimed batch. *)
type sample = { s_domain : int; s_chunk : int; s_ms : float }

let profiling = Atomic.make false
let profile_lock = Mutex.create ()
let profile_samples : sample list ref = ref []

let set_profiling b = Atomic.set profiling b

let drain_profile () =
  Mutex.lock profile_lock;
  let s = List.rev !profile_samples in
  profile_samples := [];
  Mutex.unlock profile_lock;
  List.map (fun s -> (s.s_domain, s.s_chunk, s.s_ms)) s

let record_samples local =
  Mutex.lock profile_lock;
  profile_samples := List.rev_append local !profile_samples;
  Mutex.unlock profile_lock

(* Claim and run chunks of [j] until none remain.  Called (and
   returns) with [t.lock] held; the lock is released around the chunk
   bodies.  Chunks are claimed in small batches — one lock round-trip
   per batch instead of per chunk — sized so that late stragglers
   still spread across whoever is free. *)
let drain t wid j =
  let len = Array.length j.chunks in
  while j.next < len do
    let remaining = len - j.next in
    let take =
      Stdlib.max 1 (Stdlib.min 4 (remaining / (2 * t.domains)))
    in
    let c0 = j.next in
    let take = Stdlib.min take (len - c0) in
    j.next <- c0 + take;
    Mutex.unlock t.lock;
    let error = ref None in
    let samples = ref [] in
    let prof = Atomic.get profiling in
    for c = c0 to c0 + take - 1 do
      let t0 = if prof then Unix.gettimeofday () else 0.0 in
      (match j.chunks.(c) () with
      | () -> ()
      | exception e -> if !error = None then error := Some e);
      if prof then
        samples :=
          { s_domain = wid; s_chunk = c; s_ms = (Unix.gettimeofday () -. t0) *. 1000. }
          :: !samples
    done;
    if prof && !samples <> [] then record_samples (List.rev !samples);
    Mutex.lock t.lock;
    (match !error with
    | Some e when j.failed = None -> j.failed <- Some e
    | _ -> ());
    j.completed <- j.completed + take;
    if j.completed = len then Condition.broadcast t.work_done
  done

let worker t wid =
  Mutex.lock t.lock;
  let rec loop () =
    if t.stopping then Mutex.unlock t.lock
    else
      match t.job with
      | Some j when j.next < Array.length j.chunks ->
        drain t wid j;
        loop ()
      | _ ->
        Condition.wait t.has_work t.lock;
        loop ()
  in
  loop ()

let create ~domains =
  if domains < 1 || domains > 128 then
    invalid_arg "Pool.create: domains must be in [1, 128]";
  let t =
    {
      domains;
      lock = Mutex.create ();
      has_work = Condition.create ();
      work_done = Condition.create ();
      job = None;
      stopping = false;
      workers = [||];
    }
  in
  if domains > 1 then
    t.workers <-
      Array.init (domains - 1) (fun k -> Domain.spawn (fun () -> worker t (k + 1)));
  t

let domains t = t.domains
let sequential = create ~domains:1

let shutdown t =
  if Array.length t.workers > 0 then begin
    Mutex.lock t.lock;
    t.stopping <- true;
    Condition.broadcast t.has_work;
    Mutex.unlock t.lock;
    Array.iter Domain.join t.workers;
    t.workers <- [||]
  end

(* Submit [chunks], participate in draining them, wait for stragglers,
   then re-raise the first failure if any.  Wake-ups are targeted:
   with fewer chunks than domains only [len - 1] workers are signalled
   (the caller takes a chunk itself), so surplus workers sleep through
   the whole job instead of waking to find nothing. *)
let run_job t chunks =
  let len = Array.length chunks in
  if len > 0 then begin
    let j = { chunks; next = 0; completed = 0; failed = None } in
    Mutex.lock t.lock;
    t.job <- Some j;
    let wake = Stdlib.min (len - 1) (t.domains - 1) in
    for _ = 1 to wake do
      Condition.signal t.has_work
    done;
    drain t 0 j;
    while j.completed < len do
      Condition.wait t.work_done t.lock
    done;
    t.job <- None;
    Mutex.unlock t.lock;
    match j.failed with Some e -> raise e | None -> ()
  end

(* Chunking: contiguous index ranges whose boundaries depend only on
   [n], the pool size and the (pure) cost hint — never on scheduling.
   Without a hint: [min domains n] near-equal ranges, as before.  With
   a hint: up to [4 * domains] ranges cut at near-equal *weight*, so a
   front-loaded or skewed cost profile (e.g. honest members encrypt,
   fail-stop members do nothing) cannot serialize the tail of a job
   behind one overloaded domain.  The finer grain is what lets batched
   claiming rebalance: cheap ranges drain fast and their domains move
   on to the heavy ones. *)
let chunk_bounds ?cost t n =
  match cost with
  | None ->
    let nchunks = Stdlib.min t.domains n in
    Array.init nchunks (fun c -> (c * n / nchunks, (((c + 1) * n) / nchunks) - 1))
  | Some cost ->
    let nchunks = Stdlib.min n (4 * t.domains) in
    (* prefix sums of clamped per-index weights *)
    let pre = Array.make (n + 1) 0 in
    for i = 0 to n - 1 do
      pre.(i + 1) <- pre.(i) + Stdlib.max 1 (cost i)
    done;
    let total = pre.(n) in
    let bounds = Array.make nchunks (0, 0) in
    let lo = ref 0 in
    for c = 0 to nchunks - 1 do
      let left = nchunks - c in
      (* every later chunk must stay non-empty *)
      let max_hi = n - left in
      let target = pre.(!lo) + (((total - pre.(!lo)) + left - 1) / left) in
      let hi = ref !lo in
      while !hi < max_hi && pre.(!hi + 1) < target do
        incr hi
      done;
      bounds.(c) <- (!lo, !hi);
      lo := !hi + 1
    done;
    bounds

let iter ?cost t n f =
  if n < 0 then invalid_arg "Pool.iter: negative size";
  if n > 0 then
    if t.domains = 1 || n = 1 then
      for i = 0 to n - 1 do
        f i
      done
    else
      run_job t
        (Array.map
           (fun (lo, hi) ->
             fun () ->
              for i = lo to hi do
                f i
              done)
           (chunk_bounds ?cost t n))

let map ?cost t n f =
  if n < 0 then invalid_arg "Pool.map: negative size";
  if n = 0 then [||]
  else if t.domains = 1 || n = 1 then begin
    let r0 = f 0 in
    let out = Array.make n r0 in
    for i = 1 to n - 1 do
      out.(i) <- f i
    done;
    out
  end
  else begin
    let out = Array.make n None in
    iter ?cost t n (fun i -> out.(i) <- Some (f i));
    Array.map (function Some v -> v | None -> assert false) out
  end

let map_reduce ?cost t n ~map:f ~reduce ~init =
  if t.domains = 1 || n <= 1 then begin
    let acc = ref init in
    for i = 0 to n - 1 do
      acc := reduce !acc (f i)
    done;
    !acc
  end
  else Array.fold_left reduce init (map ?cost t n f)

let derive_rng ~seed i = Random.State.make [| Splitmix.mix seed i |]
