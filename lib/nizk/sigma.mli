(** Non-interactive sigma protocols for Paillier relations, via the
    Fiat-Shamir transform over {!Transcript}.

    These are the *real* proofs attached to offline-phase broadcasts:

    - {!Plaintext_knowledge}: knowledge of [(m, r)] with
      [c = (1+N)^m r^N mod N^2] — the proof each committee member
      attaches to its random-wire-value and Beaver-share ciphertexts
      (Protocol 3 / Protocol 4 Steps 1-2 and 4).
    - {!Multiplication}: knowledge of [(b, r)] with [c_b = Enc(b; r)]
      and [c_c = c_a^b] — the relation [R] of Protocol 3 (second
      committee of Beaver generation).

    The challenge space is [2^chal_bits]; knowledge soundness error is
    [2^-chal_bits] per proof (statistical parameter, not a bottleneck
    for the reproduction).

    All exponentiations go through the memoized {!P.context} for the
    key, so proving/verifying many statements under one key reuses the
    Montgomery precomputation. *)

module B = Yoso_bigint.Bigint
module P = Yoso_paillier.Paillier

val chal_bits : int

module Plaintext_knowledge : sig
  type proof = { a : B.t; z_m : B.t; z_r : B.t }

  val prove :
    P.public_key ->
    rng:Random.State.t ->
    m:B.t ->
    r:B.t ->
    c:P.ciphertext ->
    proof
  (** [r] must be the randomness actually used in [c]. *)

  val verify : P.public_key -> c:P.ciphertext -> proof -> bool

  val size_bits : P.public_key -> int
  (** Communication size of a proof, in bits (for cost accounting). *)
end

module Multiplication : sig
  type proof = { a1 : B.t; a2 : B.t; z : B.t; z_r : B.t }

  val prove :
    P.public_key ->
    rng:Random.State.t ->
    b:B.t ->
    r:B.t ->
    c_a:P.ciphertext ->
    c_b:P.ciphertext ->
    c_c:P.ciphertext ->
    proof

  val verify :
    P.public_key -> c_a:P.ciphertext -> c_b:P.ciphertext -> c_c:P.ciphertext -> proof -> bool

  val size_bits : P.public_key -> int
end
