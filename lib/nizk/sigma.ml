module B = Yoso_bigint.Bigint
module P = Yoso_paillier.Paillier

let chal_bits = 128
let blind_bits = 128 (* statistical blinding of integer responses *)

(* All exponentiations below go through the memoized Paillier context
   for [pk]: Montgomery contexts for N and N^2 are built once per key,
   not once per proof. *)
let pow_n2 pk b e = P.Ctx.pow_n2 (P.context pk) b e
let pow_n pk b e = P.Ctx.pow_n (P.context pk) b e

let sample_unit n rng =
  let rec go () =
    let r = B.random_below rng n in
    if B.is_zero r || not (B.is_one (B.gcd r n)) then go () else r
  in
  go ()

(* (1+N)^x mod N^2 = 1 + (x mod N) * N *)
let g_pow (pk : P.public_key) x =
  B.erem (B.add B.one (B.mul (B.erem x pk.P.n) pk.P.n)) pk.P.n2

module Plaintext_knowledge = struct
  type proof = { a : B.t; z_m : B.t; z_r : B.t }

  let transcript pk ~c ~a =
    let ts = Transcript.create ~label:"paillier-ptk" in
    Transcript.absorb_bigint ts ~label:"N" pk.P.n;
    Transcript.absorb_bigint ts ~label:"c" (P.raw c);
    Transcript.absorb_bigint ts ~label:"a" a;
    Transcript.challenge_bigint ts ~label:"e" ~bits:chal_bits

  let prove pk ~rng ~m ~r ~c =
    let n = pk.P.n and n2 = pk.P.n2 in
    let x = B.random_below rng n in
    let u = sample_unit n rng in
    let a = B.mulmod (g_pow pk x) (pow_n2 pk u n) n2 in
    let e = transcript pk ~c ~a in
    let z_m = B.erem (B.add x (B.mul e m)) n in
    let z_r = B.mulmod u (pow_n pk r e) n in
    { a; z_m; z_r }

  let verify pk ~c proof =
    let n = pk.P.n and n2 = pk.P.n2 in
    if B.sign proof.z_r <= 0 || not (B.is_one (B.gcd proof.z_r n)) then false
    else begin
      let e = transcript pk ~c ~a:proof.a in
      let lhs = B.mulmod (g_pow pk proof.z_m) (pow_n2 pk proof.z_r n) n2 in
      let rhs = B.mulmod proof.a (pow_n2 pk (P.raw c) e) n2 in
      B.equal lhs rhs
    end

  let size_bits pk = 4 * pk.P.bits (* a: 2|N|, z_m: |N|, z_r: |N| *)
end

module Multiplication = struct
  type proof = { a1 : B.t; a2 : B.t; z : B.t; z_r : B.t }

  let transcript pk ~c_a ~c_b ~c_c ~a1 ~a2 =
    let ts = Transcript.create ~label:"paillier-mult" in
    Transcript.absorb_bigint ts ~label:"N" pk.P.n;
    Transcript.absorb_bigint ts ~label:"c_a" (P.raw c_a);
    Transcript.absorb_bigint ts ~label:"c_b" (P.raw c_b);
    Transcript.absorb_bigint ts ~label:"c_c" (P.raw c_c);
    Transcript.absorb_bigint ts ~label:"a1" a1;
    Transcript.absorb_bigint ts ~label:"a2" a2;
    Transcript.challenge_bigint ts ~label:"e" ~bits:chal_bits

  let prove pk ~rng ~b ~r ~c_a ~c_b ~c_c =
    let n = pk.P.n and n2 = pk.P.n2 in
    (* x blinds e*b statistically: |x| = |N| + chal + blind bits *)
    let x = B.random_bits rng (B.bit_length n + chal_bits + blind_bits) in
    let u = sample_unit n rng in
    let a1 = B.mulmod (g_pow pk x) (pow_n2 pk u n) n2 in
    let a2 = pow_n2 pk (P.raw c_a) x in
    let e = transcript pk ~c_a ~c_b ~c_c ~a1 ~a2 in
    let z = B.add x (B.mul e b) in
    let z_r = B.mulmod u (pow_n pk r e) n in
    { a1; a2; z; z_r }

  let verify pk ~c_a ~c_b ~c_c proof =
    let n = pk.P.n and n2 = pk.P.n2 in
    if B.sign proof.z < 0 || B.sign proof.z_r <= 0 || not (B.is_one (B.gcd proof.z_r n))
    then false
    else begin
      let e = transcript pk ~c_a ~c_b ~c_c ~a1:proof.a1 ~a2:proof.a2 in
      let lhs1 = B.mulmod (g_pow pk proof.z) (pow_n2 pk proof.z_r n) n2 in
      let rhs1 = B.mulmod proof.a1 (pow_n2 pk (P.raw c_b) e) n2 in
      let lhs2 = pow_n2 pk (P.raw c_a) proof.z in
      let rhs2 = B.mulmod proof.a2 (pow_n2 pk (P.raw c_c) e) n2 in
      B.equal lhs1 rhs1 && B.equal lhs2 rhs2
    end

  let size_bits pk =
    (* a1, a2: 2|N| each; z: |N| + chal + blind; z_r: |N| *)
    (6 * pk.P.bits) + chal_bits + blind_bits
end
