(* Private prediction: a model owner (client 0) holds the weight matrix
   of a small linear scorer; a user (client 1) holds a feature vector.
   The user learns the score vector W * x; the model owner learns
   nothing about x and reveals nothing about W beyond the output.

   Run with:  dune exec examples/private_prediction.exe *)

module F = Yoso_field.Field.Fp
module Params = Yoso_mpc.Params
module Protocol = Yoso_mpc.Protocol
module Gen = Yoso_circuit.Generators

let rows = 3 (* score classes *)
let cols = 6 (* features *)

let weights =
  (* row-major fixed-point weights (scaled by 100) *)
  [| 12; -3; 45; 7; 0; 22; 5; 31; -8; 14; 9; 2; -6; 11; 3; 40; -2; 17 |]

let features = [| 2; 0; 1; 3; 5; 1 |]

let () =
  let circuit = Gen.matrix_vector ~rows ~cols in
  let params = Params.create ~n:20 ~t:6 ~k:4 () in
  let adversary = { Params.malicious = 4; passive = 2; fail_stop = 1 } in
  let inputs client =
    if client = 0 then Array.map F.of_int weights else Array.map F.of_int features
  in
  let config = Protocol.config ~adversary () in
  let report = Protocol.execute ~params ~config ~circuit ~inputs () in

  Format.printf "Private linear prediction (W: %dx%d, user features hidden)@." rows cols;
  List.iteri
    (fun r o ->
      (* map back from F_p to signed integers for display *)
      let v = F.to_int o.Yoso_mpc.Online.value in
      let signed = if v > F.p / 2 then v - F.p else v in
      Format.printf "  score[%d] = %.2f@." r (float_of_int signed /. 100.0))
    report.Protocol.outputs;
  Format.printf "  verified against cleartext model: %b@."
    (Protocol.check report circuit ~inputs);
  Format.printf "  committees consumed: %d, total posts: %d@." report.Protocol.committees
    report.Protocol.posts
