(* Quickstart: two clients compute a private dot product through the
   full YOSO MPC pipeline (setup -> offline -> online) and read the
   result, with a malicious minority in every committee.

   Run with:  dune exec examples/quickstart.exe *)

module F = Yoso_field.Field.Fp
module Params = Yoso_mpc.Params
module Protocol = Yoso_mpc.Protocol
module Gen = Yoso_circuit.Generators

let () =
  (* 1. The functionality: <x, y> over F_p, described as a circuit. *)
  let circuit = Gen.dot_product ~len:8 in

  (* 2. Committee parameters.  n = 16 roles per committee, at most
     t = 5 of them malicious, packing factor k = 3 — i.e. a corruption
     gap: t < n (1/2 - eps) with eps ~ 0.15. *)
  let params = Params.create ~n:16 ~t:5 ~k:3 () in

  (* 3. Each committee is sampled with 5 actively malicious roles (the
     maximum the parameters tolerate) and one silent crash. *)
  let adversary = { Params.malicious = 5; passive = 0; fail_stop = 1 } in

  (* 4. Client inputs: client 0 holds x, client 1 holds y. *)
  let x = [| 3; 1; 4; 1; 5; 9; 2; 6 |] and y = [| 2; 7; 1; 8; 2; 8; 1; 8 |] in
  let inputs client = Array.map F.of_int (if client = 0 then x else y) in

  (* 5. Execute. *)
  let config = Protocol.config ~adversary () in
  let report = Protocol.execute ~params ~config ~circuit ~inputs () in

  Format.printf "YOSO MPC quickstart: private dot product@.";
  Format.printf "  committee params: %a@." Params.pp params;
  List.iter
    (fun o ->
      Format.printf "  client %d learns <x, y> = %a@." o.Yoso_mpc.Online.client F.pp
        o.Yoso_mpc.Online.value)
    report.Protocol.outputs;
  Format.printf "  matches plain evaluation: %b@." (Protocol.check report circuit ~inputs);
  Format.printf "  broadcast posts: %d over %d committees@." report.Protocol.posts
    report.Protocol.committees;
  Format.printf "  offline elements/gate: %.1f   online elements/gate: %.1f@."
    (Protocol.offline_per_gate report) (Protocol.online_per_gate report)
