(* Fail-stop and active resilience (Sections 5.4 and 4 of the paper).

   By halving the packing gap (k ~ n*eps/2 instead of n*eps) the
   protocol keeps working even when n*eps honest roles crash or time
   out in every committee — on top of t malicious roles.  This example
   sweeps the number of silent roles in standard mode and in fail-stop
   mode and shows where each configuration stops being viable.

   The malicious roles here are not merely absent: each one posts
   genuinely tampered content (corrupted shares, forged proofs,
   wrong-degree sharings, garbage blobs) drawn from a seeded fault
   plan.  Honest verifiers detect and exclude every such post, so the
   sweep also reports how many faults were caught per run; and when a
   configuration is pushed beyond its bound the protocol aborts with a
   structured failure rather than delivering a wrong output.

   Run with:  dune exec examples/failstop_resilience.exe *)

module F = Yoso_field.Field.Fp
module Params = Yoso_mpc.Params
module Protocol = Yoso_mpc.Protocol
module Gen = Yoso_circuit.Generators
module Faults = Yoso_runtime.Faults

let n = 40
let eps = 0.2

let circuit = Gen.dot_product ~len:6
let inputs c = Array.init 6 (fun i -> F.of_int ((c + 2) * (i + 1)))

let attempt ?(validate = true) params ~malicious ~dropped =
  let adversary = { Params.malicious; passive = 0; fail_stop = dropped } in
  let run () =
    let report =
      Protocol.execute ~params
        ~config:
          (Protocol.config ~adversary ~plan:(Faults.random ~seed:1234) ~validate ())
        ~circuit ~inputs ()
    in
    if Protocol.check report circuit ~inputs then `Delivered report.Protocol.faults_detected
    else `Wrong
  in
  if not validate then match run () with
    | r -> r
    | exception Faults.Protocol_failure f -> `Aborted f
  else
    match Params.validate_adversary params adversary with
    | () -> run ()
    | exception Invalid_argument _ -> `Infeasible

let describe = function
  | `Delivered faults ->
    if faults = 0 then "output delivered"
    else Printf.sprintf "delivered (%d faults caught)" faults
  | `Wrong -> "WRONG OUTPUT (bug!)"
  | `Infeasible -> "not enough speaking roles"
  | `Aborted f ->
    Printf.sprintf "clean abort (%d/%d at %s)" f.Faults.surviving f.Faults.required
      f.Faults.f_step

let () =
  let standard = Params.of_gap ~n ~eps () in
  let failstop = Params.of_gap ~n ~eps ~fail_stop_mode:true () in
  let t = standard.Params.t in
  Format.printf "Fail-stop tolerance, n = %d, eps = %.2f, t = %d tampering everywhere@." n
    eps t;
  Format.printf "  standard mode: k = %d  (headroom %d silent roles)@." standard.Params.k
    (Params.max_fail_stop standard { Params.malicious = t; passive = 0; fail_stop = 0 });
  Format.printf "  fail-stop mode: k = %d  (headroom %d silent roles)@." failstop.Params.k
    (Params.max_fail_stop failstop { Params.malicious = t; passive = 0; fail_stop = 0 });
  Format.printf "@.  %-8s %-32s %-32s@." "crashes" "standard (k~n*eps)" "fail-stop (k~n*eps/2)";
  List.iter
    (fun dropped ->
      Format.printf "  %-8d %-32s %-32s@." dropped
        (describe (attempt standard ~malicious:t ~dropped))
        (describe (attempt failstop ~malicious:t ~dropped)))
    [ 0; 2; 4; 6; 8; 10 ];

  (* sweep the active side too: tampering roles from none up to t,
     with the fail-stop budget held at half the fail-stop-mode headroom *)
  let dropped = 4 in
  Format.printf "@.Active corruption sweep, fail-stop mode, %d crashes everywhere@." dropped;
  Format.printf "  %-10s %s@." "tampering" "result";
  List.iter
    (fun malicious ->
      Format.printf "  %-10d %s@." malicious
        (describe (attempt failstop ~malicious ~dropped)))
    [ 0; 2; 4; 6; t ];

  (* one step beyond the bound: more silent roles than the speaking-honest
     threshold allows.  Validation would reject this configuration up
     front; forcing execution shows the run aborts cleanly instead of
     delivering a wrong output. *)
  let beyond =
    Params.max_fail_stop failstop { Params.malicious = t; passive = 0; fail_stop = 0 } + 1
  in
  Format.printf "@.Beyond the bound (forced execution, %d crashes):@." beyond;
  Format.printf "  %s@."
    (describe (attempt ~validate:false failstop ~malicious:t ~dropped:beyond))
