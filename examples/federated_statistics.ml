(* Federated statistics: six hospitals jointly compute the variance of
   their (private) patient counts without revealing individual values —
   the large-scale-distributed-setting workload the paper's
   introduction motivates.

   The circuit computes the integer variance numerator
       V = parties * sum(x_i^2) - (sum x_i)^2
   so that variance = V / parties^2 over the rationals.

   Run with:  dune exec examples/federated_statistics.exe *)

module F = Yoso_field.Field.Fp
module Params = Yoso_mpc.Params
module Protocol = Yoso_mpc.Protocol
module Gen = Yoso_circuit.Generators

let hospitals = [| 412; 387; 455; 401; 398; 429 |]

let () =
  let parties = Array.length hospitals in
  let circuit = Gen.variance_numerator ~parties in

  (* gap parameters derived directly from eps, as in Section 6:
     committees of 24, eps = 0.15 -> t = 7, k = 4 *)
  let params = Params.of_gap ~n:24 ~eps:0.15 () in
  let adversary = { Params.malicious = params.Params.t; passive = 0; fail_stop = 0 } in

  (* client 0 additionally supplies the public constants the circuit
     needs (circuits have no constant gates) *)
  let inputs client =
    if client = 0 then [| F.of_int hospitals.(0); F.of_int parties; F.of_int (-1) |]
    else [| F.of_int hospitals.(client) |]
  in
  let config = { Protocol.default_config with adversary } in
  let report = Protocol.execute ~params ~config ~circuit ~inputs () in

  let sum = Array.fold_left ( + ) 0 hospitals in
  let mean = float_of_int sum /. float_of_int parties in
  Format.printf "Federated variance across %d hospitals@." parties;
  Format.printf "  committee params: %a (every committee contains t malicious roles)@."
    Params.pp params;
  (match report.Protocol.outputs with
  | o :: _ ->
    let v = F.to_int o.Yoso_mpc.Online.value in
    Format.printf "  variance numerator V = %d@." v;
    Format.printf "  variance = V / parties^2 = %.2f  (mean %.1f)@."
      (float_of_int v /. float_of_int (parties * parties))
      mean
  | [] -> Format.printf "  no outputs?!@.");
  Format.printf "  every hospital receives the same output: %b@."
    (Protocol.check report circuit ~inputs);
  Format.printf "  online elements/gate: %.1f@." (Protocol.online_per_gate report)
