(* Federated statistics: six hospitals jointly compute the variance of
   their (private) patient counts without revealing individual values —
   the large-scale-distributed-setting workload the paper's
   introduction motivates.

   The functionality is written in the yoso_lang DSL
       V = parties * sum(x_i^2) - (sum x_i)^2
   (so that variance = V / parties^2 over the rationals) and compiled
   to a circuit by the optimizing front-end; constants and input
   encoding are handled by the compiler, not by hand.

   Run with:  dune exec examples/federated_statistics.exe *)

module F = Yoso_field.Field.Fp
module Params = Yoso_mpc.Params
module Protocol = Yoso_mpc.Protocol
module Ast = Yoso_lang.Ast
module Compiler = Yoso_lang.Compiler

let hospitals = [| 412; 387; 455; 401; 398; 429 |]

let () =
  let parties = Array.length hospitals in

  (* the functionality, as an expression over per-hospital inputs *)
  let program =
    let b = Ast.B.create ~name:"federated-variance" () in
    let xs =
      List.init parties (fun i ->
          Ast.B.input b ~client:i (Printf.sprintf "patients%d" i))
    in
    let s = Ast.sum xs in
    let sumsq = Ast.sum (List.map (fun x -> Ast.mul x x) xs) in
    let v = Ast.sub (Ast.mul (Ast.const parties) sumsq) (Ast.mul s s) in
    for i = 0 to parties - 1 do
      Ast.B.output b ~client:i v
    done;
    Ast.B.build b
  in
  let compiled = Compiler.compile program in

  (* gap parameters derived directly from eps, as in Section 6:
     committees of 24, eps = 0.15 -> t = 7, k = 4 *)
  let params = Params.of_gap ~n:24 ~eps:0.15 () in
  let adversary = { Params.malicious = params.Params.t; passive = 0; fail_stop = 0 } in

  (* one integer per hospital; the compiler expands them (and the
     constants client's vector) into the circuit's input layout *)
  let inputs =
    Compiler.protocol_inputs compiled ~inputs:(fun client -> [| hospitals.(client) |])
  in
  let circuit = compiled.Compiler.circuit in
  let config = Protocol.config ~adversary () in
  let report = Protocol.execute ~params ~config ~circuit ~inputs () in

  let sum = Array.fold_left ( + ) 0 hospitals in
  let mean = float_of_int sum /. float_of_int parties in
  Format.printf "Federated variance across %d hospitals@." parties;
  Format.printf "  committee params: %a (every committee contains t malicious roles)@."
    Params.pp params;
  (match report.Protocol.outputs with
  | o :: _ ->
    let v = F.to_int o.Yoso_mpc.Online.value in
    Format.printf "  variance numerator V = %d@." v;
    Format.printf "  variance = V / parties^2 = %.2f  (mean %.1f)@."
      (float_of_int v /. float_of_int (parties * parties))
      mean
  | [] -> Format.printf "  no outputs?!@.");
  Format.printf "  every hospital receives the same output: %b@."
    (Protocol.check report circuit ~inputs);
  Format.printf "  online elements/gate: %.1f@." (Protocol.online_per_gate report)
