(* Sealed-bid auction: four bidders submit private 8-bit bids; the
   protocol announces the winning bid and the winner's index, and
   nothing else.  Losing bids stay secret.

   The interesting part is the comparisons: an arithmetic circuit has
   no order relation, so the DSL compiles [gt]/[ge] through bit
   decomposition — each bid enters the circuit as 8 bit-shares, and a
   prefix-equality circuit computes the comparison.  Writing this by
   hand against the Builder API takes hundreds of gates per pair of
   bidders; the compiler also merges the duplicated pairwise
   comparison circuits by CSE, roughly halving the multiplications.

   Run with:  dune exec examples/sealed_bid_auction.exe *)

module F = Yoso_field.Field.Fp
module Params = Yoso_mpc.Params
module Protocol = Yoso_mpc.Protocol
module Ir = Yoso_lang.Ir
module Compiler = Yoso_lang.Compiler
module Programs = Yoso_lang.Programs

let bids = [| 37; 142; 96; 121 |]

let () =
  let bidders = Array.length bids in
  let program = Programs.auction ~bidders ~width:8 () in
  let compiled = Compiler.compile program in
  let naive = Compiler.compile ~passes:[] program in

  Format.printf "Sealed-bid auction, %d bidders, 8-bit bids@." bidders;
  let ns = naive.Compiler.naive_stats and os = Compiler.final_stats compiled in
  Format.printf
    "  compiler: %d -> %d multiplications (CSE merges the pairwise comparisons), \
     depth %d -> %d@."
    ns.Ir.muls os.Ir.muls ns.Ir.depth os.Ir.depth;

  let params = Params.create ~n:16 ~t:5 ~k:3 () in
  let inputs =
    Compiler.protocol_inputs compiled ~inputs:(fun client -> [| bids.(client) |])
  in
  let circuit = compiled.Compiler.circuit in
  let report = Protocol.execute ~params ~circuit ~inputs () in

  (match report.Protocol.outputs with
  | max_o :: win_o :: _ ->
    Format.printf "  winning bid: %a, winner: bidder %a@." F.pp
      max_o.Yoso_mpc.Online.value F.pp win_o.Yoso_mpc.Online.value
  | _ -> Format.printf "  unexpected outputs?!@.");
  Format.printf "  protocol output matches plain evaluation: %b@."
    (Protocol.check report circuit ~inputs);
  Format.printf "  online elements/gate: %.1f over %d committees@."
    (Protocol.online_per_gate report) report.Protocol.committees
