(* yoso — command-line driver for the YOSO MPC library.

   Subcommands:
     yoso run       execute the packed protocol (or a baseline) on a
                    generated circuit and report outputs + costs
     yoso analyze   Section-6 committee-size analysis (one cell or the
                    whole Table 1 grid)
     yoso sortition Monte-Carlo sortition validation  *)

module F = Yoso_field.Field.Fp
module Params = Yoso_mpc.Params
module Protocol = Yoso_mpc.Protocol
module Cdn = Yoso_mpc.Cdn_baseline
module Bgw = Yoso_mpc.Bgw_baseline
module Gen = Yoso_circuit.Generators
module Circuit = Yoso_circuit.Circuit
module Analysis = Yoso_sortition.Analysis
module Sampler = Yoso_sortition.Sampler
module Faults = Yoso_runtime.Faults
module Board = Yoso_net.Board
module Meter = Yoso_net.Meter
module Sim = Yoso_net.Sim
module Factory = Yoso_factory.Factory
module Depot = Yoso_factory.Depot
module Runner = Yoso_transport.Runner
module Lang = Yoso_lang.Compiler
module Programs = Yoso_lang.Programs
open Cmdliner

(* ------------------------------------------------------------------ *)
(* circuit selection                                                   *)
(* ------------------------------------------------------------------ *)

let build_circuit kind size seed =
  match kind with
  | "dot" -> (Gen.dot_product ~len:size, size)
  | "wide" -> (Gen.wide_mul_reduced ~width:size ~depth:2 ~clients:2, 2 * size)
  | "poly" -> (Gen.poly_eval ~degree:size, size + 1)
  | "variance" -> (Gen.variance_numerator ~parties:(max 2 size), 3)
  | "matvec" -> (Gen.matrix_vector ~rows:size ~cols:size, size * size)
  | "random" ->
    (Gen.random_dag ~gates:(10 * size) ~clients:2 ~mul_fraction:0.5 ~seed, 2)
  | other -> failwith (Printf.sprintf "unknown circuit kind %S" other)

let demo_inputs kind size len client =
  match kind with
  | "variance" ->
    if client = 0 then [| F.of_int 7; F.of_int (max 2 size); F.of_int (-1) |]
    else [| F.of_int ((3 * client) + 1) |]
  | _ -> Array.init len (fun i -> F.of_int (((client + 2) * (i + 3)) mod 1000))

(* ------------------------------------------------------------------ *)
(* run                                                                 *)
(* ------------------------------------------------------------------ *)

(* Multi-process execution: every committee member is a forked OS
   process replaying the same seeded protocol; frames cross real
   sockets through the bulletin-board daemon.  The parent serves the
   board and prints the (unanimous) report. *)
let run_transport ~deadline_ms ~topology ~params ~circuit ~inputs ~base_config ~json
    ~extra n =
  let transport = base_config.Protocol.net.Protocol.transport in
  let endpoint =
    match transport with
    | "unix" -> `Unix_socket
    | "tcp" -> `Tcp
    | other -> failwith (Printf.sprintf "unknown transport %S (sim|unix|tcp)" other)
  in
  (* the recovery sub-record is plumbing for us, not for [execute]:
     the daemon owns the journal and the chaos schedule *)
  let journal = base_config.Protocol.recovery.Protocol.journal in
  let chaos =
    match base_config.Protocol.recovery.Protocol.chaos with
    | None -> None
    | Some spec -> Some (Yoso_transport.Chaos.create (Yoso_transport.Chaos.parse spec))
  in
  let child ~slot:_ ~link =
    let config =
      { base_config with
        Protocol.net = { base_config.Protocol.net with Protocol.link = Some link } }
    in
    match Protocol.execute ~params ~config ~circuit ~inputs () with
    | r -> Protocol.report_json ~options:{ Protocol.Report.default with extra } r
    | exception Faults.Protocol_failure f ->
      (* still deterministic: every replica fails at the same step, so
         the reports agree on the failure too *)
      Printf.sprintf "{\"protocol_failure\":\"%s/%s (committee %s)\"}" f.Faults.f_phase
        f.Faults.f_step f.Faults.f_committee
  in
  let seed = base_config.Protocol.exec.Protocol.seed in
  let meter = Yoso_net.Meter.create () in
  let res =
    Runner.run ~endpoint ~deadline_ms ~meter ?journal ?chaos ?topology ~nslots:n ~seed
      ~child ()
  in
  (match res.Runner.reports with
  | [] ->
    Format.eprintf "transport run produced no reports (down: %s)@."
      (String.concat "," (List.map string_of_int res.Runner.down));
    exit 2
  | (_, first) :: _ ->
    if json then begin
      let b = Buffer.create 1024 in
      Buffer.add_string b
        (Printf.sprintf
           "{\"transport\":%S,\"nslots\":%d,\"agree\":%b,\"wall_ms\":%.1f,\"down\":[%s],\
            \"restarts\":%d,\
            \"daemon\":{\"frames_in\":%d,\"frames_out\":%d,\"digests_out\":%d,\
            \"batches_out\":%d,\"suppressed_bytes\":%d,\"garbled_frames\":%d,\
            \"bytes_in\":%d,\"bytes_out\":%d,\"reconnects\":%d,\"replayed_frames\":%d,\
            \"recovered_frames\":%d,\"journal_bytes\":%d,\"shards\":%d,\"digest\":%d},\
            \"report\":"
           transport n res.Runner.agree res.Runner.wall_ms
           (String.concat "," (List.map string_of_int res.Runner.down))
           res.Runner.restarts
           res.Runner.stats.Yoso_transport.Daemon.frames_in
           res.Runner.stats.Yoso_transport.Daemon.frames_out
           res.Runner.stats.Yoso_transport.Daemon.digests_out
           res.Runner.stats.Yoso_transport.Daemon.batches_out
           res.Runner.stats.Yoso_transport.Daemon.suppressed_bytes
           res.Runner.stats.Yoso_transport.Daemon.garbled_frames
           res.Runner.stats.Yoso_transport.Daemon.bytes_in
           res.Runner.stats.Yoso_transport.Daemon.bytes_out
           res.Runner.stats.Yoso_transport.Daemon.reconnects
           res.Runner.stats.Yoso_transport.Daemon.replayed_frames
           res.Runner.stats.Yoso_transport.Daemon.recovered_frames
           res.Runner.stats.Yoso_transport.Daemon.journal_bytes
           res.Runner.stats.Yoso_transport.Daemon.shards
           res.Runner.stats.Yoso_transport.Daemon.digest);
      Buffer.add_string b first;
      Buffer.add_char b '}';
      print_endline (Buffer.contents b)
    end
    else begin
      Format.printf "transport: %s, %d member processes + board daemon@." transport n;
      Format.printf "reports: %d collected, unanimous: %b, down: [%s]@."
        (List.length res.Runner.reports) res.Runner.agree
        (String.concat ";" (List.map string_of_int res.Runner.down));
      (match Runner.json_int_field first ~field:"digest" with
      | Some d -> Format.printf "transcript digest: %d@." d
      | None -> ());
      Format.printf "daemon: %d frames in, %d delivered, %d B in, %d B out@."
        res.Runner.stats.Yoso_transport.Daemon.frames_in
        res.Runner.stats.Yoso_transport.Daemon.frames_out
        res.Runner.stats.Yoso_transport.Daemon.bytes_in
        res.Runner.stats.Yoso_transport.Daemon.bytes_out;
      (match topology with
      | Some topo when topo.Yoso_transport.Topology.routed ->
        Format.printf
          "routing: %a, %d digest records, %d batches, %d B suppressed, daemon \
           digest %d@."
          Yoso_transport.Topology.pp topo
          res.Runner.stats.Yoso_transport.Daemon.digests_out
          res.Runner.stats.Yoso_transport.Daemon.batches_out
          res.Runner.stats.Yoso_transport.Daemon.suppressed_bytes
          res.Runner.stats.Yoso_transport.Daemon.digest
      | Some topo when topo.Yoso_transport.Topology.shards > 1 ->
        Format.printf "shards: %d (journal partitioned by posting slot)@."
          topo.Yoso_transport.Topology.shards
      | _ -> ());
      if
        res.Runner.restarts > 0
        || res.Runner.stats.Yoso_transport.Daemon.reconnects > 0
        || res.Runner.stats.Yoso_transport.Daemon.journal_bytes > 0
      then
        Format.printf
          "recovery: %d daemon restarts, %d reconnects, %d frames replayed, %d \
           recovered from journal (%d B)@."
          res.Runner.restarts res.Runner.stats.Yoso_transport.Daemon.reconnects
          res.Runner.stats.Yoso_transport.Daemon.replayed_frames
          res.Runner.stats.Yoso_transport.Daemon.recovered_frames
          res.Runner.stats.Yoso_transport.Daemon.journal_bytes;
      (match res.Runner.stats.Yoso_transport.Daemon.chaos_events with
      | [] -> ()
      | evs ->
        Format.printf "chaos: %s@."
          (String.concat ", "
             (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) evs)));
      Format.printf "wall: %.1f ms@." res.Runner.wall_ms
    end);
  if res.Runner.agree && res.Runner.down = [] then 0 else 2

let run_cmd protocol program kind size n t k eps malicious fail_stop seed fault_seed json
    net_seed latency drop domains transport deadline_ms journal chaos routed shards
    quorum stream depot =
  let params =
    match eps with
    | Some eps -> Params.of_gap ~n ~eps ()
    | None -> Params.create ~n ~t ~k ()
  in
  let circuit, inputs, compiled =
    match program with
    | None ->
      let circuit, len = build_circuit kind size seed in
      (circuit, demo_inputs kind size len, None)
    | Some name ->
      if protocol <> "packed" then
        failwith "--program runs through the packed protocol only";
      let p = Programs.by_name name ~size in
      let c = Lang.compile p in
      ( c.Lang.circuit,
        Lang.protocol_inputs c ~inputs:(Programs.demo_inputs p ~seed),
        Some c )
  in
  let extra =
    match compiled with
    | Some c -> [ ("compiler", Lang.stats_json c) ]
    | None -> []
  in
  let net =
    let model =
      { Sim.ideal with Sim.latency_ms = latency; drop = max 0. (min 1. drop) }
    in
    { Board.default_config with Board.model; net_seed }
  in
  if not json then begin
    (match compiled with
    | Some c ->
      Format.printf "%a" Lang.pp_pipeline c;
      Format.printf "compiled matches interpreter: %b@."
        (Lang.check c ~inputs:(Programs.demo_inputs c.Lang.program ~seed))
    | None -> ());
    Format.printf "circuit: %a@." Circuit.pp_stats circuit;
    Format.printf "params:  %a@." Params.pp params
  end;
  (match protocol with
  | "packed" ->
    let adversary = { Params.malicious; passive = 0; fail_stop } in
    let plan = Faults.random ~seed:(Option.value ~default:seed fault_seed) in
    if transport <> "sim" then begin
      let topology =
        if routed then
          Some (Yoso_transport.Topology.routed ~shards ?quorum ~nslots:n ())
        else if shards > 1 then Some (Yoso_transport.Topology.sharded ~shards ~nslots:n)
        else None
      in
      let base_config =
        Protocol.config ~adversary ~plan ~seed ~board:net ~domains ~transport ?journal
          ?chaos ()
      in
      exit
        (run_transport ~deadline_ms ~topology ~params ~circuit ~inputs ~base_config
           ~json ~extra n)
    end;
    if journal <> None || chaos <> None then
      failwith "--journal and --chaos need a socket transport (--transport unix|tcp)";
    if routed || shards > 1 then
      failwith "--routed and --shards need a socket transport (--transport unix|tcp)";
    let config = Protocol.config ~adversary ~plan ~seed ~board:net ~domains () in
    if stream > 1 then begin
      let jobs = Array.init stream (fun _ -> { Factory.circuit; inputs }) in
      let r = Factory.stream ~params ~config ?capacity:depot ~jobs () in
      if json then print_endline (Factory.report_json r)
      else begin
        Format.printf "factory: %d circuits, %d mult gates, %.1f ms wall, %.1f gates/s@."
          r.Factory.circuits r.Factory.total_mult r.Factory.wall_ms r.Factory.gates_per_sec;
        let d = r.Factory.depot in
        Format.printf
          "depot: %d puts / %d draws, peak %d units, producer blocked %d, consumer \
           blocked %d@."
          d.Depot.puts d.Depot.draws d.Depot.max_occupancy d.Depot.producer_blocks
          d.Depot.consumer_blocks;
        Format.printf "refills: %d batches, %d B attributed, %d landed during online@."
          (List.length (Meter.refills r.Factory.meter))
          (Meter.refill_total r.Factory.meter)
          r.Factory.refills_during_online;
        List.iter
          (fun cr ->
            Format.printf "  c%d: seed=%d digest=%d correct=%b@." cr.Factory.index
              cr.Factory.seed
              cr.Factory.report.Protocol.transcript.Board.digest
              (Protocol.check cr.Factory.report circuit ~inputs))
          r.Factory.results
      end;
      exit 0
    end;
    let r =
      try Protocol.execute ~params ~config ~circuit ~inputs ()
      with Faults.Protocol_failure f ->
        Format.eprintf
          "protocol failure: %s/%s (committee %s): %d contributions survived, %d \
           required — the network or the adversary silenced too many roles@."
          f.Faults.f_phase f.Faults.f_step f.Faults.f_committee f.Faults.surviving
          f.Faults.required;
        exit 2
    in
    if json then
      print_endline
        (Protocol.report_json
           ~options:{ Protocol.Report.default with Protocol.Report.timings = true; extra }
           r)
    else begin
      List.iter
        (fun o ->
          Format.printf "output: client %d wire %d = %a@." o.Yoso_mpc.Online.client
            o.Yoso_mpc.Online.wire F.pp o.Yoso_mpc.Online.value)
        r.Protocol.outputs;
      Format.printf "correct: %b@." (Protocol.check r circuit ~inputs);
      Format.printf
        "cost: setup=%d offline=%d online=%d elements (%.1f offline/gate, %.1f online/gate)@."
        r.Protocol.setup_elements r.Protocol.offline_elements r.Protocol.online_elements
        (Protocol.offline_per_gate r) (Protocol.online_per_gate r);
      Format.printf
        "bytes: setup=%d offline=%d online=%d (field data %d B online, %.1f B/gate)@."
        r.Protocol.setup_bytes r.Protocol.offline_bytes r.Protocol.online_bytes
        r.Protocol.online_field_bytes
        (Protocol.online_field_bytes_per_gate r);
      Format.printf "net: %d frames, %d late, %d dropped, %.0f ms simulated@."
        r.Protocol.net.Sim.sent r.Protocol.net.Sim.late r.Protocol.net.Sim.dropped
        r.Protocol.net.Sim.elapsed_ms;
      Format.printf "posts: %d over %d committees@." r.Protocol.posts r.Protocol.committees;
      if malicious + fail_stop > 0 then begin
        Format.printf "faults: %d detected, %d posts rejected@." r.Protocol.faults_detected
          r.Protocol.posts_rejected;
        List.iter
          (fun (kind, count) ->
            Format.printf "  %-18s %d@." (Faults.kind_to_string kind) count)
          (Faults.blame_summary r.Protocol.blames)
      end
    end
  | "cdn" ->
    let adversary = { Params.malicious; passive = 0; fail_stop } in
    let r = Cdn.execute ~params ~adversary ~seed ~circuit ~inputs () in
    List.iter
      (fun (c, w, v) -> Format.printf "output: client %d wire %d = %a@." c w F.pp v)
      r.Cdn.outputs;
    Format.printf "correct: %b@." (Cdn.check r circuit ~inputs);
    Format.printf "cost: offline=%d online=%d (%.1f online/gate)@." r.Cdn.offline_elements
      r.Cdn.online_elements (Cdn.online_per_gate r)
  | "bgw" ->
    let r = Bgw.execute ~n ~t:(min t ((n - 1) / 2)) ~seed ~circuit ~inputs () in
    List.iter
      (fun (c, w, v) -> Format.printf "output: client %d wire %d = %a@." c w F.pp v)
      r.Bgw.outputs;
    Format.printf "correct: %b@." (Bgw.check r circuit ~inputs);
    Format.printf "cost: input=%d online=%d (%.1f online/gate)@." r.Bgw.input_elements
      r.Bgw.online_elements (Bgw.online_per_gate r)
  | other -> failwith (Printf.sprintf "unknown protocol %S (packed|cdn|bgw)" other));
  0

(* ------------------------------------------------------------------ *)
(* analyze                                                             *)
(* ------------------------------------------------------------------ *)

let analyze_cmd c_param f full =
  if full then begin
    Format.printf "%7s %5s | %7s %7s %7s %6s %7s@." "C" "f" "t" "c" "c'" "eps" "k";
    List.iter
      (fun (c, f, row) ->
        match row with
        | None -> Format.printf "%7d %5.2f | infeasible@." c f
        | Some r ->
          Format.printf "%7d %5.2f | %7d %7d %7d %6.3f %7d@." c f r.Analysis.t
            r.Analysis.c r.Analysis.c' r.Analysis.eps r.Analysis.k)
      (Analysis.table1 ())
  end
  else begin
    match Analysis.solve ~f c_param with
    | None -> Format.printf "C=%d f=%.2f: infeasible (⊥)@." c_param f
    | Some r ->
      Format.printf "C=%d f=%.2f:@." c_param f;
      Format.printf "  corruption bound      t   = %d@." r.Analysis.t;
      Format.printf "  committee (with gap)  c   = %d@." r.Analysis.c;
      Format.printf "  committee (eps = 0)   c'  = %d@." r.Analysis.c';
      Format.printf "  gap                   eps = %.4f@." r.Analysis.eps;
      Format.printf "  packing / improvement k   = %d@." r.Analysis.k;
      Format.printf "  slacks: eps1=%.3f eps2=%.3f eps3=%.3f delta=%.4f@." r.Analysis.eps1
        r.Analysis.eps2 r.Analysis.eps3 r.Analysis.delta
  end;
  0

(* ------------------------------------------------------------------ *)
(* sortition                                                           *)
(* ------------------------------------------------------------------ *)

let sortition_cmd c_param f pool trials seed =
  match Analysis.solve ~f c_param with
  | None ->
    Format.printf "C=%d f=%.2f: infeasible@." c_param f;
    1
  | Some row ->
    let pool = match pool with Some p -> p | None -> max (20 * c_param) 100_000 in
    let stats = Sampler.run ~pool ~f ~row ~trials (Yoso_hash.Splitmix.of_int seed) in
    Format.printf "%a@." Sampler.pp stats;
    if stats.Sampler.corruption_bound_violations = 0 && stats.Sampler.gap_violations = 0
    then 0
    else 1

let randgen_cmd n t seed =
  let o = Yoso_mpc.Randgen.run ~n ~t ~seed () in
  Format.printf "random value: %a@." F.pp o.Yoso_mpc.Randgen.value;
  Format.printf "qualified dealers: %d, broadcast elements: %d, posts: %d@."
    o.Yoso_mpc.Randgen.qualified_dealers o.Yoso_mpc.Randgen.elements
    o.Yoso_mpc.Randgen.posts;
  0

(* ------------------------------------------------------------------ *)
(* cmdliner plumbing                                                   *)
(* ------------------------------------------------------------------ *)

let n_arg = Arg.(value & opt int 16 & info [ "n"; "committee" ] ~doc:"Committee size.")
let t_arg = Arg.(value & opt int 5 & info [ "t"; "corrupt" ] ~doc:"Malicious bound per committee.")
let k_arg = Arg.(value & opt int 3 & info [ "k"; "pack" ] ~doc:"Packing factor.")
let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Deterministic seed.")

let run_t =
  let protocol =
    Arg.(value & opt string "packed" & info [ "protocol"; "p" ] ~doc:"packed, cdn or bgw.")
  in
  let program =
    Arg.(
      value
      & opt (some string) None
      & info [ "program" ] ~docv:"NAME"
          ~doc:
            "Compile a DSL program through the yoso_lang optimizing front-end \
             instead of using a generated circuit: $(b,auction), $(b,variance), \
             $(b,tally) or $(b,linear_model).  $(b,--size) sets the number of \
             bidders / parties / voters / features; inputs are deterministic \
             demo values derived from $(b,--seed).  Packed protocol only; works \
             with every transport.  The JSON report gains a \"compiler\" field \
             with per-pass statistics.")
  in
  let kind =
    Arg.(
      value & opt string "dot"
      & info [ "circuit"; "c" ] ~doc:"dot, wide, poly, variance, matvec or random.")
  in
  let size = Arg.(value & opt int 8 & info [ "size"; "s" ] ~doc:"Circuit size parameter.") in
  let eps =
    Arg.(
      value
      & opt (some float) None
      & info [ "eps" ] ~doc:"Derive t and k from a corruption gap instead of --t/--k.")
  in
  let malicious =
    Arg.(value & opt int 0 & info [ "malicious" ] ~doc:"Malicious roles per committee.")
  in
  let fail_stop =
    Arg.(value & opt int 0 & info [ "fail-stop" ] ~doc:"Crashed roles per committee.")
  in
  let fault_seed =
    Arg.(
      value
      & opt (some int) None
      & info [ "fault-seed" ]
          ~doc:
            "Seed for the adversary's fault plan (which tampering each corrupted role \
             performs); defaults to --seed.  Replaying a fault seed replays the attack.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Emit the full report (counts, measured bytes, network stats) as JSON.")
  in
  let net_seed =
    Arg.(
      value & opt int 1
      & info [ "net-seed" ]
          ~doc:
            "Seed of the simulated network (jitter, loss, synthesized frame bytes).  \
             Equal seeds replay byte-identical transcripts.")
  in
  let latency =
    Arg.(
      value & opt float 0.
      & info [ "latency" ] ~doc:"Per-link latency in ms for the simulated network.")
  in
  let drop =
    Arg.(
      value & opt float 0.
      & info [ "drop" ]
          ~doc:
            "Per-message loss probability on the simulated network (honest posts that \
             vanish are treated like fail-stops; the run may abort with a protocol \
             failure if too few contributions survive).")
  in
  let domains =
    Arg.(
      value & opt int 1
      & info [ "domains" ]
          ~doc:
            "Worker domains for committee fan-out (packed protocol only).  Outputs, \
             blames and the transcript digest are identical at every value; only \
             wall-clock time changes.")
  in
  let transport =
    Arg.(
      value & opt string "sim"
      & info [ "transport" ]
          ~doc:
            "How frames travel (packed protocol only).  $(b,sim) keeps everything \
             in-process; $(b,unix) and $(b,tcp) fork one OS process per committee \
             member and route every frame through a bulletin-board daemon over \
             Unix-domain or loopback TCP sockets.  Equal seeds give transcripts \
             byte-identical to the sim run.")
  in
  let deadline =
    Arg.(
      value & opt float 10000.
      & info [ "deadline" ]
          ~doc:
            "Round deadline in wall-clock ms for socket transports: a peer that \
             stays silent past it is treated like a fail-stop.")
  in
  let journal =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal" ] ~docv:"PATH"
          ~doc:
            "Write-ahead journal for the board daemon (socket transports only): \
             every accepted frame is appended before broadcast, and a daemon \
             restarted on the same path recovers the board and resumes serving.")
  in
  let chaos =
    Arg.(
      value
      & opt (some string) None
      & info [ "chaos" ] ~docv:"SPEC"
          ~doc:
            "Seeded socket-fault injection (socket transports only), e.g. \
             $(b,sever=0.05,dup=0.02,delay=0.05,delay-ms=20,trunc=0.01,kill=40,seed=7): \
             per-delivery sever/truncate/duplicate/delay rates plus scheduled \
             daemon kill points ($(b,kill) needs $(b,--journal)).")
  in
  let routed =
    Arg.(
      value & flag
      & info [ "routed" ]
          ~doc:
            "Interest-routed delivery with role-local execution (socket transports \
             only): each member receives full frames only from its quorum sources \
             and compact digest records from everyone else, and materializes only \
             the frames of roles it owns.")
  in
  let shards =
    Arg.(
      value & opt int 1
      & info [ "shards" ] ~docv:"K"
          ~doc:
            "Partition the daemon's board bookkeeping and write-ahead journal into \
             $(docv) shards keyed by posting slot (socket transports only).  The \
             transcript digest chains across shards in global commit order, so the \
             stitched board equals an unsharded run's.")
  in
  let quorum =
    Arg.(
      value
      & opt (some int) None
      & info [ "quorum" ] ~docv:"Q"
          ~doc:
            "Full-frame fan-out under $(b,--routed): each frame goes in full to the \
             $(docv) slots after its owner in ring order (default max 2 n/8).")
  in
  let stream =
    Arg.(
      value & opt int 1
      & info [ "stream" ] ~docv:"N"
          ~doc:
            "Run $(docv) instances of the circuit through one long-lived offline \
             factory (packed protocol, sim transport): a background producer domain \
             preprocesses circuit $(b,j+1) while circuit $(b,j)'s online phase \
             consumes from the depot.  Per-circuit seeds are derived from \
             $(b,--seed); each circuit's transcript is byte-identical to a one-shot \
             run at its derived seed.")
  in
  let depot =
    Arg.(
      value
      & opt (some int) None
      & info [ "depot" ] ~docv:"UNITS"
          ~doc:
            "Depot capacity in gate-equivalent units for $(b,--stream) (default: \
             twice the circuit's preprocessing footprint).  The producer pauses at \
             circuit boundaries while the depot sits above this watermark and \
             resumes once consumption drains it to half.")
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Execute YOSO MPC on a generated circuit")
    Term.(
      const run_cmd $ protocol $ program $ kind $ size $ n_arg $ t_arg $ k_arg $ eps $ malicious
      $ fail_stop $ seed_arg $ fault_seed $ json $ net_seed $ latency $ drop $ domains
      $ transport $ deadline $ journal $ chaos $ routed $ shards $ quorum $ stream $ depot)

let analyze_t =
  let c_param = Arg.(value & opt int 1000 & info [ "big-c"; "C" ] ~doc:"Sortition parameter C.") in
  let f = Arg.(value & opt float 0.05 & info [ "frac"; "f" ] ~doc:"Global corruption ratio.") in
  let full = Arg.(value & flag & info [ "table" ] ~doc:"Print the full Table 1 grid.") in
  Cmd.v
    (Cmd.info "analyze" ~doc:"Committee-size analysis with gap (paper Section 6)")
    Term.(const analyze_cmd $ c_param $ f $ full)

let sortition_t =
  let c_param = Arg.(value & opt int 1000 & info [ "big-c"; "C" ] ~doc:"Sortition parameter C.") in
  let f = Arg.(value & opt float 0.05 & info [ "frac"; "f" ] ~doc:"Global corruption ratio.") in
  let pool =
    Arg.(value & opt (some int) None & info [ "pool" ] ~doc:"Global party pool size.")
  in
  let trials = Arg.(value & opt int 2000 & info [ "trials" ] ~doc:"Monte-Carlo trials.") in
  Cmd.v
    (Cmd.info "sortition" ~doc:"Monte-Carlo validation of the committee bounds")
    Term.(const sortition_cmd $ c_param $ f $ pool $ trials $ seed_arg)

let randgen_t =
  Cmd.v
    (Cmd.info "randgen" ~doc:"Two-committee Feldman-verified randomness beacon")
    Term.(const randgen_cmd $ n_arg $ t_arg $ seed_arg)

let main =
  Cmd.group
    (Cmd.info "yoso" ~version:"1.0.0"
       ~doc:"Scalable YOSO MPC via packed secret-sharing (PODC 2025 reproduction)")
    [ run_t; analyze_t; sortition_t; randgen_t ]

let () = exit (Cmd.eval' main)
